package repro

// Fleet-layer surface: re-exports of internal/fleet plus the
// placement-policy × coalescing-system sweep that paperbench serves as
// the "fleet" figure. See DESIGN.md §8 for the fleet architecture and
// EXPERIMENTS.md for the first sweep's numbers.

import (
	"fmt"

	"repro/internal/fleet"
	"repro/internal/sim"
)

// Re-exported fleet types. See package repro/internal/fleet for field
// documentation.
type (
	// FleetConfig describes one multi-host fleet run.
	FleetConfig = fleet.Config
	// FleetResult reports one fleet run.
	FleetResult = fleet.Result
	// FleetHostResult summarises one host of a fleet run.
	FleetHostResult = fleet.HostResult
	// FleetStreamConfig parameterises the VM churn generator.
	FleetStreamConfig = fleet.StreamConfig
	// FleetFlavor is one VM size class of the churn stream.
	FleetFlavor = fleet.Flavor
	// FleetEvent is one arrival or departure of the churn stream.
	FleetEvent = fleet.Event
	// FleetTickInfo is the per-tick snapshot handed to
	// FleetConfig.OnTick.
	FleetTickInfo = fleet.TickInfo
)

// RunFleet executes one fleet run: a cluster of hosts under the
// configured VM churn, placed by the configured policy.
func RunFleet(cfg FleetConfig) (FleetResult, error) { return fleet.Run(cfg) }

// FleetPolicies returns the canonical placement policy names.
func FleetPolicies() []string { return fleet.PolicyNames() }

// FleetSystems derives the fleet sweep's system axis from the system
// registry: the guest-only baseline (THP) plus every figure system
// that either coordinates the two layers or replaces the translation
// mode — the systems whose behaviour the fleet's churn and placement
// pressure can actually differentiate. A newly registered coordinated
// system joins the fleet figure automatically.
func FleetSystems() []System {
	systems := []System{THP}
	for _, s := range Systems() {
		d := sim.Def(s)
		if d.Coordinated || d.NewTranslation != nil {
			systems = append(systems, s)
		}
	}
	return systems
}

// FleetSweep runs the fleet figure: every placement policy crossed
// with the FleetSystems axis (the THP baseline plus each coordinated
// or translation-replacing figure system), each cell one fleet under
// the same churn stream. The fleet is sized so placement pressure is
// real — some arrivals are rejected — which is where the policies
// differ. Cells run on the shared experiment grid, so Options.Parallel
// and Options.Trace compose as for every other figure (each cell's
// fleet steps its hosts sequentially inside its grid cell).
func FleetSweep(o Options) []FleetResult {
	hosts, arrivals := 6, 64
	hostMemMB := 1024
	if o.Quick {
		hosts, arrivals = 3, 24
		hostMemMB = 768
	}
	systems := FleetSystems()
	return runGrid(o, FleetPolicies(), systems,
		[]Setting{{Name: "churn"}},
		func(p string) string { return p },
		func(j gridJob[string]) FleetResult {
			res, err := fleet.Run(fleet.Config{
				Hosts:     hosts,
				HostMemMB: hostMemMB,
				System:    j.System,
				Policy:    j.Unit,
				Stream: FleetStreamConfig{
					Arrivals:         arrivals,
					MeanInterarrival: 6,
					MeanLifetime:     200,
				},
				Audit:              o.Audit,
				DisableFastForward: o.DisableFastForward,
				Parallel:           1, // the grid already parallelises across cells
				Seed:               o.seed(),
				Trace:              j.Trace,
			})
			if err != nil {
				panic(fmt.Sprintf("repro: fleet cell %s × %s: %v", j.Unit, j.System, err))
			}
			return res
		})
}

// FormatFleetTable renders fleet sweep rows as a fixed-width text
// table, one line per (policy × system) cell.
func FormatFleetTable(title string, rows []FleetResult) string {
	out := fmt.Sprintf("%s\n%-12s %-14s %8s %8s %8s %6s %10s %12s %10s %10s\n",
		title, "policy", "system", "placed", "rejected", "migr", "vms",
		"thpt", "mig_pages", "fmfi", "cov")
	for _, r := range rows {
		out += fmt.Sprintf("%-12s %-14s %8d %8d %8d %6d %10.2f %12d %10.4f %10.4f\n",
			r.Policy, r.System, r.Placed, r.Rejected, r.Migrations, r.ResidentVMs,
			r.Throughput, r.MigratedPages, r.MeanHostFMFI, r.HugeCoverage)
	}
	return out
}
