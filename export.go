package repro

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
)

// BenchSchema identifies the machine-readable paperbench report format.
// Bump the suffix on any breaking change to the JSON layout.
const BenchSchema = "paperbench/v1"

// BenchReport is the machine-readable form of a paperbench invocation:
// every figure that ran, as a grid of cells, each cell a flat metric
// map. Serialized with encoding/json the output is deterministic for a
// deterministic run (struct fields in declaration order, map keys
// sorted), so reports diff cleanly across commits.
type BenchReport struct {
	Schema  string        `json:"schema"`
	Seed    int64         `json:"seed"`
	Quick   bool          `json:"quick"`
	Figures []BenchFigure `json:"figures"`
}

// BenchFigure is one experiment's grid (e.g. "cleanslate").
type BenchFigure struct {
	Name  string      `json:"name"`
	Cells []BenchCell `json:"cells"`
}

// BenchCell is one (system × workload × setting) point of a figure.
// VM is the VM index for multi-VM grids and 0 for single-VM runs.
type BenchCell struct {
	System   string             `json:"system"`
	Workload string             `json:"workload"`
	Setting  string             `json:"setting,omitempty"`
	VM       int                `json:"vm"`
	Metrics  map[string]float64 `json:"metrics"`
}

// NewBenchReport starts a report stamped with the schema version and
// the options the grids ran under.
func NewBenchReport(o Options) *BenchReport {
	return &BenchReport{Schema: BenchSchema, Seed: o.Seed, Quick: o.Quick}
}

// Add appends one figure's cells. Figures with no cells are recorded
// too — Validate rejects them, which catches experiments that silently
// produced nothing.
func (r *BenchReport) Add(name string, cells []BenchCell) {
	r.Figures = append(r.Figures, BenchFigure{Name: name, Cells: cells})
}

// ResultCell flattens a simulation Result into a metric cell.
func ResultCell(setting string, vm int, res Result) BenchCell {
	return BenchCell{
		System:   res.System,
		Workload: res.Workload,
		Setting:  setting,
		VM:       vm,
		Metrics: map[string]float64{
			"throughput":             res.Throughput,
			"mean_latency":           res.MeanLatency,
			"p99_latency":            res.P99Latency,
			"tlb_misses_per_kacc":    res.TLBMissesPerKAccess,
			"walk_cycles_per_access": res.WalkCyclesPerAccess,
			"aligned_rate":           res.AlignedRate,
			"guest_huge":             float64(res.GuestHuge),
			"host_huge":              float64(res.HostHuge),
			"guest_fmfi":             res.GuestFMFI,
			"migrated_pages":         float64(res.MigratedPages),
			"background_cycles":      float64(res.BackgroundCycles),
			"bucket_reuse_rate":      res.BucketReuseRate,
		},
	}
}

// MicroCell flattens a Figure 2 micro-benchmark point into a cell. The
// page-size configuration label (e.g. "Host-H-VM-B") is the system and
// the dataset size is the setting.
func MicroCell(res MicroResult) BenchCell {
	return BenchCell{
		System:   res.Label,
		Workload: "micro",
		Setting:  fmt.Sprintf("%dMB", res.DatasetMB),
		Metrics: map[string]float64{
			"throughput":        res.Throughput,
			"cycles_per_access": res.CyclesPerAccess,
			"tlb_miss_rate":     res.TLBMissRate,
		},
	}
}

// FleetCells flattens one fleet run into metric cells: a fleet-wide
// cell (workload "fleet", VM 0) followed by one cell per host
// (workload "host", VM = host id), all labelled with the placement
// policy as the setting. The per-host FMFI and huge-page coverage
// cells are the fleet-level series the paper's fragmentation story is
// about, surfaced per figure-cell in the JSON artifact.
func FleetCells(res FleetResult) []BenchCell {
	cells := []BenchCell{{
		System:   res.System,
		Workload: "fleet",
		Setting:  res.Policy,
		Metrics: map[string]float64{
			"hosts":          float64(res.Hosts),
			"arrivals":       float64(res.Arrivals),
			"placed":         float64(res.Placed),
			"rejected":       float64(res.Rejected),
			"departed":       float64(res.Departed),
			"migrations":     float64(res.Migrations),
			"resident_vms":   float64(res.ResidentVMs),
			"migrated_pages": float64(res.MigratedPages),
			"requests":       float64(res.Requests),
			"throughput":     res.Throughput,
			"mean_host_fmfi": res.MeanHostFMFI,
			"huge_coverage":  res.HugeCoverage,
		},
	}}
	for _, h := range res.PerHost {
		cells = append(cells, BenchCell{
			System:   res.System,
			Workload: "host",
			Setting:  res.Policy,
			VM:       h.Host,
			Metrics: map[string]float64{
				"vms":           float64(h.VMs),
				"used_cpu":      float64(h.UsedCPU),
				"used_ram_mb":   float64(h.UsedRAMMB),
				"free_pages":    float64(h.FreePages),
				"fmfi":          h.FMFI,
				"huge_coverage": h.HugeCoverage,
				"pages_in":      float64(h.PagesIn),
				"pages_out":     float64(h.PagesOut),
			},
		})
	}
	return cells
}

// Validate checks the report's structural contract: the expected
// schema, at least one figure, every figure named and non-empty, every
// cell carrying a system label and only finite metric values. CI runs
// this against the -json artifact so a half-empty grid fails the build
// instead of shipping.
func (r *BenchReport) Validate() error {
	if r.Schema != BenchSchema {
		return fmt.Errorf("benchreport: schema %q, want %q", r.Schema, BenchSchema)
	}
	if len(r.Figures) == 0 {
		return fmt.Errorf("benchreport: no figures")
	}
	seen := make(map[string]bool, len(r.Figures))
	for _, fig := range r.Figures {
		if fig.Name == "" {
			return fmt.Errorf("benchreport: unnamed figure")
		}
		if seen[fig.Name] {
			return fmt.Errorf("benchreport: duplicate figure %q", fig.Name)
		}
		seen[fig.Name] = true
		if len(fig.Cells) == 0 {
			return fmt.Errorf("benchreport: figure %q has no cells", fig.Name)
		}
		for i, c := range fig.Cells {
			if c.System == "" {
				return fmt.Errorf("benchreport: %s cell %d has no system", fig.Name, i)
			}
			if len(c.Metrics) == 0 {
				return fmt.Errorf("benchreport: %s cell %d (%s/%s) has no metrics",
					fig.Name, i, c.System, c.Workload)
			}
			for name, v := range c.Metrics {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					return fmt.Errorf("benchreport: %s cell %d (%s/%s) metric %q = %v",
						fig.Name, i, c.System, c.Workload, name, v)
				}
			}
		}
	}
	return nil
}

// WriteJSON writes the report as indented JSON.
func (r *BenchReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// ReadBenchReport decodes a report written by WriteJSON. It does not
// validate; call Validate on the result to check the contract.
func ReadBenchReport(rd io.Reader) (*BenchReport, error) {
	var r BenchReport
	dec := json.NewDecoder(rd)
	if err := dec.Decode(&r); err != nil {
		return nil, fmt.Errorf("benchreport: %w", err)
	}
	return &r, nil
}
