package repro

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"

	"repro/internal/telemetry"
)

// BenchSchema identifies the machine-readable paperbench report format.
// Bump the suffix on any breaking change to the JSON layout.
const BenchSchema = "paperbench/v1"

// BenchReport is the machine-readable form of a paperbench invocation:
// every figure that ran, as a grid of cells, each cell a flat metric
// map. Serialized with encoding/json the output is deterministic for a
// deterministic run (struct fields in declaration order, map keys
// sorted), so reports diff cleanly across commits.
type BenchReport struct {
	Schema  string        `json:"schema"`
	Seed    int64         `json:"seed"`
	Quick   bool          `json:"quick"`
	Figures []BenchFigure `json:"figures"`
	// RunStats is the run's self-profile (wall time, per-cell timing,
	// peak heap) when telemetry collection was enabled; omitted
	// otherwise so reports from plain runs are unchanged.
	RunStats *RunStatsReport `json:"runstats,omitempty"`
	// Trace summarises the flight recorder when the run was traced:
	// retained volumes, ring drops, and the final sampler stride.
	Trace *TraceReport `json:"trace,omitempty"`
}

// RunStatsReport is the telemetry self-profile section of a report.
type RunStatsReport struct {
	// WallMS is the run's total wall-clock time in milliseconds.
	WallMS float64 `json:"wall_ms"`
	// PeakHeapBytes is the largest HeapAlloc observed during the run.
	PeakHeapBytes uint64 `json:"peak_heap_bytes"`
	// Cells profiles each unit of work in completion order.
	Cells []RunStatCell `json:"cells"`
}

// RunStatCell is one profiled unit of work (a grid cell, a fleet run).
type RunStatCell struct {
	Name   string  `json:"name"`
	WallMS float64 `json:"wall_ms"`
	// Ticks and TicksPerSec report simulated progress per wall-clock
	// time; zero (omitted) for cells whose result carries no tick count.
	Ticks       uint64  `json:"ticks,omitempty"`
	TicksPerSec float64 `json:"ticks_per_sec,omitempty"`
	// Allocs/AllocBytes are heap allocation deltas across the cell —
	// exact for sequential grids, upper bounds under Options.Parallel.
	Allocs     uint64 `json:"allocs,omitempty"`
	AllocBytes uint64 `json:"alloc_bytes,omitempty"`
}

// TraceReport is the flight-recorder summary section of a report.
type TraceReport struct {
	// Events and Samples are the retained volumes at the end of the run.
	Events  int `json:"events"`
	Samples int `json:"samples"`
	// DroppedEvents counts events lost to ring wraparound; nonzero means
	// the retained event stream has a truncated head (raise EventCap).
	DroppedEvents uint64 `json:"dropped_events"`
	// SamplerStride is the final sampling stride in ticks; a value above
	// the initial stride means decimation compressed the series.
	SamplerStride uint64 `json:"sampler_stride"`
	// Streamed records whether the run streamed its trace incrementally.
	Streamed bool `json:"streamed,omitempty"`
}

// BenchFigure is one experiment's grid (e.g. "cleanslate").
type BenchFigure struct {
	Name  string      `json:"name"`
	Cells []BenchCell `json:"cells"`
}

// BenchCell is one (system × workload × setting) point of a figure.
// VM is the VM index for multi-VM grids and 0 for single-VM runs.
type BenchCell struct {
	System   string             `json:"system"`
	Workload string             `json:"workload"`
	Setting  string             `json:"setting,omitempty"`
	VM       int                `json:"vm"`
	Metrics  map[string]float64 `json:"metrics"`
}

// NewBenchReport starts a report stamped with the schema version and
// the options the grids ran under.
func NewBenchReport(o Options) *BenchReport {
	return &BenchReport{Schema: BenchSchema, Seed: o.Seed, Quick: o.Quick}
}

// Add appends one figure's cells. Figures with no cells are recorded
// too — Validate rejects them, which catches experiments that silently
// produced nothing.
func (r *BenchReport) Add(name string, cells []BenchCell) {
	r.Figures = append(r.Figures, BenchFigure{Name: name, Cells: cells})
}

// ResultCell flattens a simulation Result into a metric cell.
func ResultCell(setting string, vm int, res Result) BenchCell {
	return BenchCell{
		System:   res.System,
		Workload: res.Workload,
		Setting:  setting,
		VM:       vm,
		Metrics: map[string]float64{
			"throughput":             res.Throughput,
			"mean_latency":           res.MeanLatency,
			"p99_latency":            res.P99Latency,
			"tlb_misses_per_kacc":    res.TLBMissesPerKAccess,
			"walk_cycles_per_access": res.WalkCyclesPerAccess,
			"aligned_rate":           res.AlignedRate,
			"guest_huge":             float64(res.GuestHuge),
			"host_huge":              float64(res.HostHuge),
			"guest_fmfi":             res.GuestFMFI,
			"migrated_pages":         float64(res.MigratedPages),
			"background_cycles":      float64(res.BackgroundCycles),
			"bucket_reuse_rate":      res.BucketReuseRate,
			"huge_coverage":          res.HugeCoverage,
			"swapped_pages":          float64(res.SwappedPages),
			"swapped_out_pages":      float64(res.SwappedOutPages),
			"swapped_in_pages":       float64(res.SwappedInPages),
			"balloon_pages":          float64(res.BalloonPages),
		},
	}
}

// PressureCells flattens one pressure-sweep row into metric cells, one
// per VM, with the overcommit ratio as the setting (e.g.
// "overcommit-1.25"). The swap/balloon metrics ResultCell carries are
// the interesting columns here; the latency and coverage columns show
// what the pressure cost each system.
func PressureCells(row PressureRow) []BenchCell {
	setting := fmt.Sprintf("overcommit-%.2f", row.Overcommit)
	cells := make([]BenchCell, 0, len(row.Results))
	for i, res := range row.Results {
		cells = append(cells, ResultCell(setting, i, res))
	}
	return cells
}

// MicroCell flattens a Figure 2 micro-benchmark point into a cell. The
// page-size configuration label (e.g. "Host-H-VM-B") is the system and
// the dataset size is the setting.
func MicroCell(res MicroResult) BenchCell {
	return BenchCell{
		System:   res.Label,
		Workload: "micro",
		Setting:  fmt.Sprintf("%dMB", res.DatasetMB),
		Metrics: map[string]float64{
			"throughput":        res.Throughput,
			"cycles_per_access": res.CyclesPerAccess,
			"tlb_miss_rate":     res.TLBMissRate,
		},
	}
}

// FleetCells flattens one fleet run into metric cells: a fleet-wide
// cell (workload "fleet", VM 0) followed by one cell per host
// (workload "host", VM = host id), all labelled with the placement
// policy as the setting. The per-host FMFI and huge-page coverage
// cells are the fleet-level series the paper's fragmentation story is
// about, surfaced per figure-cell in the JSON artifact.
func FleetCells(res FleetResult) []BenchCell {
	cells := []BenchCell{{
		System:   res.System,
		Workload: "fleet",
		Setting:  res.Policy,
		Metrics: map[string]float64{
			"hosts":          float64(res.Hosts),
			"arrivals":       float64(res.Arrivals),
			"placed":         float64(res.Placed),
			"rejected":       float64(res.Rejected),
			"departed":       float64(res.Departed),
			"migrations":     float64(res.Migrations),
			"resident_vms":   float64(res.ResidentVMs),
			"migrated_pages": float64(res.MigratedPages),
			"requests":       float64(res.Requests),
			"throughput":     res.Throughput,
			"mean_host_fmfi": res.MeanHostFMFI,
			"huge_coverage":  res.HugeCoverage,
			"swapped_pages":  float64(res.SwappedPages),
			"swapped_out":    float64(res.SwappedOutPages),
			"balloon_pages":  float64(res.BalloonPages),
		},
	}}
	for _, h := range res.PerHost {
		cells = append(cells, BenchCell{
			System:   res.System,
			Workload: "host",
			Setting:  res.Policy,
			VM:       h.Host,
			Metrics: map[string]float64{
				"vms":           float64(h.VMs),
				"used_cpu":      float64(h.UsedCPU),
				"used_ram_mb":   float64(h.UsedRAMMB),
				"free_pages":    float64(h.FreePages),
				"fmfi":          h.FMFI,
				"huge_coverage": h.HugeCoverage,
				"pages_in":      float64(h.PagesIn),
				"pages_out":     float64(h.PagesOut),
				"swapped_pages": float64(h.SwappedPages),
				"balloon_pages": float64(h.BalloonPages),
			},
		})
	}
	return cells
}

// SetRunStats fills the report's runstats section from a telemetry
// collector: total wall clock, peak heap, and one entry per profiled
// cell in completion order.
func (r *BenchReport) SetRunStats(c *telemetry.Collector) {
	rs := &RunStatsReport{
		WallMS:        c.TotalWall().Seconds() * 1000,
		PeakHeapBytes: c.PeakHeap(),
	}
	for _, cs := range c.Cells() {
		rs.Cells = append(rs.Cells, RunStatCell{
			Name:        cs.Name,
			WallMS:      cs.Wall.Seconds() * 1000,
			Ticks:       cs.Ticks,
			TicksPerSec: cs.TicksPerSec(),
			Allocs:      cs.Allocs,
			AllocBytes:  cs.AllocBytes,
		})
	}
	r.RunStats = rs
}

// SetTraceInfo fills the report's trace summary section.
func (r *BenchReport) SetTraceInfo(events, samples int, dropped, stride uint64, streamed bool) {
	r.Trace = &TraceReport{
		Events: events, Samples: samples,
		DroppedEvents: dropped, SamplerStride: stride, Streamed: streamed,
	}
}

// Warnings returns non-fatal data-quality notes about the report —
// conditions a consumer should see but that don't invalidate the
// artifact. Today: trace event drops (the retained stream has a
// truncated head).
func (r *BenchReport) Warnings() []string {
	var out []string
	if r.Trace != nil && r.Trace.DroppedEvents > 0 {
		out = append(out, fmt.Sprintf(
			"trace dropped %d events to ring wraparound; the event stream's head is truncated (raise EventCap)",
			r.Trace.DroppedEvents))
	}
	return out
}

// Format renders the runstats section as a human-readable table, cells
// sorted by wall time descending so the most expensive work leads.
func (rs *RunStatsReport) Format() string {
	cells := make([]RunStatCell, len(rs.Cells))
	copy(cells, rs.Cells)
	sort.SliceStable(cells, func(i, j int) bool { return cells[i].WallMS > cells[j].WallMS })
	var b strings.Builder
	fmt.Fprintf(&b, "runstats: wall=%.1fms peak_heap=%.1fMB cells=%d\n",
		rs.WallMS, float64(rs.PeakHeapBytes)/(1<<20), len(cells))
	fmt.Fprintf(&b, "%-42s %10s %10s %12s %10s %12s\n",
		"cell", "wall_ms", "ticks", "ticks/sec", "allocs", "alloc_mb")
	for _, c := range cells {
		fmt.Fprintf(&b, "%-42s %10.1f %10d %12.0f %10d %12.2f\n",
			c.Name, c.WallMS, c.Ticks, c.TicksPerSec, c.Allocs,
			float64(c.AllocBytes)/(1<<20))
	}
	return b.String()
}

// Validate checks the report's structural contract: the expected
// schema, at least one figure, every figure named and non-empty, every
// cell carrying a system label and only finite metric values. CI runs
// this against the -json artifact so a half-empty grid fails the build
// instead of shipping.
func (r *BenchReport) Validate() error {
	if r.Schema != BenchSchema {
		return fmt.Errorf("benchreport: schema %q, want %q", r.Schema, BenchSchema)
	}
	if len(r.Figures) == 0 {
		return fmt.Errorf("benchreport: no figures")
	}
	seen := make(map[string]bool, len(r.Figures))
	for _, fig := range r.Figures {
		if fig.Name == "" {
			return fmt.Errorf("benchreport: unnamed figure")
		}
		if seen[fig.Name] {
			return fmt.Errorf("benchreport: duplicate figure %q", fig.Name)
		}
		seen[fig.Name] = true
		if len(fig.Cells) == 0 {
			return fmt.Errorf("benchreport: figure %q has no cells", fig.Name)
		}
		for i, c := range fig.Cells {
			if c.System == "" {
				return fmt.Errorf("benchreport: %s cell %d has no system", fig.Name, i)
			}
			if len(c.Metrics) == 0 {
				return fmt.Errorf("benchreport: %s cell %d (%s/%s) has no metrics",
					fig.Name, i, c.System, c.Workload)
			}
			for name, v := range c.Metrics {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					return fmt.Errorf("benchreport: %s cell %d (%s/%s) metric %q = %v",
						fig.Name, i, c.System, c.Workload, name, v)
				}
			}
		}
	}
	if rs := r.RunStats; rs != nil {
		if math.IsNaN(rs.WallMS) || math.IsInf(rs.WallMS, 0) || rs.WallMS < 0 {
			return fmt.Errorf("benchreport: runstats wall_ms = %v", rs.WallMS)
		}
		for i, c := range rs.Cells {
			if c.Name == "" {
				return fmt.Errorf("benchreport: runstats cell %d has no name", i)
			}
			if math.IsNaN(c.WallMS) || math.IsInf(c.WallMS, 0) || c.WallMS < 0 {
				return fmt.Errorf("benchreport: runstats cell %q wall_ms = %v", c.Name, c.WallMS)
			}
		}
	}
	return nil
}

// WriteJSON writes the report as indented JSON.
func (r *BenchReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// ReadBenchReport decodes a report written by WriteJSON. It does not
// validate; call Validate on the result to check the contract.
func ReadBenchReport(rd io.Reader) (*BenchReport, error) {
	var r BenchReport
	dec := json.NewDecoder(rd)
	if err := dec.Decode(&r); err != nil {
		return nil, fmt.Errorf("benchreport: %w", err)
	}
	return &r, nil
}
