package repro

import (
	"strings"
	"testing"
)

func TestOptionsValidateAcceptsDefaults(t *testing.T) {
	if err := (Options{}).Validate(); err != nil {
		t.Fatalf("zero options rejected: %v", err)
	}
	if err := (Options{Quick: true, Workloads: []string{"redis", "specjbb"}}).Validate(); err != nil {
		t.Fatalf("valid options rejected: %v", err)
	}
}

func TestOptionsValidateRejections(t *testing.T) {
	cases := []struct {
		name    string
		opts    Options
		wantSub string
	}{
		{"negative-seed", Options{Seed: -1}, "negative seed"},
		{"negative-requests", Options{Requests: -100}, "negative request"},
		{"negative-parallel", Options{Parallel: -4}, "negative parallelism"},
		{"unknown-workload", Options{Workloads: []string{"redis", "nonesuch"}}, "nonesuch"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.opts.Validate()
			if err == nil {
				t.Fatalf("Validate accepted %+v", tc.opts)
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Errorf("error %q does not mention %q", err, tc.wantSub)
			}
		})
	}
}

// TestExperimentsPanicOnInvalidOptions locks the experiment runners'
// contract: a bad Options fails loudly before any simulation work.
func TestExperimentsPanicOnInvalidOptions(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic on invalid options", name)
			}
		}()
		fn()
	}
	bad := Options{Parallel: -1}
	mustPanic("Figure2", func() { Figure2(bad) })
	mustPanic("Motivation", func() { Motivation(bad) })
	mustPanic("CleanSlate", func() { CleanSlate(bad) })
	mustPanic("Colocated", func() { Colocated(bad) })
}
