package repro

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/telemetry"
)

// TestStreamedGridMatchesBatch locks the end-to-end streaming contract
// at the grid level: an experiment grid streamed live to its sinks
// writes the exact bytes the batch exporters produce, sequentially and
// under parallel shard merges. Telemetry rides along — the collector
// must see every cell and the progress counter must reach the grid
// size — without perturbing the traced output.
func TestStreamedGridMatchesBatch(t *testing.T) {
	opts := func() Options {
		return Options{
			Quick:     true,
			Requests:  400,
			Seed:      42,
			Workloads: []string{"masstree", "redis"},
		}
	}
	const cells = 6 // 2 workloads × 3 Breakdown systems × 1 setting

	batch := func(parallel int) (jsonl, csv []byte) {
		o := opts()
		o.Parallel = parallel
		rec := NewTraceRecorder(TraceConfig{SampleEvery: 64})
		o.Trace = rec
		if rows := Breakdown(o); len(rows) != cells {
			t.Fatalf("Breakdown returned %d rows, want %d", len(rows), cells)
		}
		var eb, sb bytes.Buffer
		if err := WriteTraceEvents(&eb, rec.Events()); err != nil {
			t.Fatal(err)
		}
		if err := WriteTraceSeries(&sb, rec.Samples()); err != nil {
			t.Fatal(err)
		}
		return eb.Bytes(), sb.Bytes()
	}
	streamed := func(parallel int) (jsonl, csv []byte) {
		o := opts()
		o.Parallel = parallel
		rec := NewTraceRecorder(TraceConfig{SampleEvery: 64})
		var eb, sb bytes.Buffer
		if err := rec.StreamTo(&eb, &sb); err != nil {
			t.Fatal(err)
		}
		o.Trace = rec
		o.Stats = telemetry.NewCollector()
		o.Progress = telemetry.NewProgress(nil, "test")
		if rows := Breakdown(o); len(rows) != cells {
			t.Fatalf("Breakdown returned %d rows, want %d", len(rows), cells)
		}
		if err := rec.FlushStream(); err != nil {
			t.Fatal(err)
		}
		if got := o.Progress.Done(); got != cells {
			t.Errorf("progress counted %d cells done, want %d", got, cells)
		}
		stats := o.Stats.Cells()
		if len(stats) != cells {
			t.Fatalf("collector recorded %d cells, want %d", len(stats), cells)
		}
		for _, c := range stats {
			if c.Ticks == 0 {
				t.Errorf("cell %q recorded 0 ticks", c.Name)
			}
			if !strings.Contains(c.Name, "×") {
				t.Errorf("cell name %q missing grid-label separator", c.Name)
			}
		}
		return eb.Bytes(), sb.Bytes()
	}

	wantJSONL, wantCSV := batch(1)
	if len(wantJSONL) == 0 || len(wantCSV) == 0 {
		t.Fatalf("batch grid recorded nothing: %d JSONL bytes, %d CSV bytes", len(wantJSONL), len(wantCSV))
	}
	for _, parallel := range []int{1, 4} {
		gotJSONL, gotCSV := streamed(parallel)
		if !bytes.Equal(gotJSONL, wantJSONL) {
			t.Errorf("Parallel=%d: streamed JSONL differs from batch (%d vs %d bytes)",
				parallel, len(gotJSONL), len(wantJSONL))
		}
		if !bytes.Equal(gotCSV, wantCSV) {
			t.Errorf("Parallel=%d: streamed CSV differs from batch (%d vs %d bytes)",
				parallel, len(gotCSV), len(wantCSV))
		}
	}
}
