package repro

import (
	"strings"
	"testing"
)

// TestForEachPanicAttribution checks the worker-panic contract: a
// panic inside one job is re-raised in the caller, carrying the job's
// identity and original panic value, while the remaining jobs still
// run to completion.
func TestForEachPanicAttribution(t *testing.T) {
	done := make([]bool, 8)
	var msg string
	func() {
		defer func() {
			r := recover()
			if r == nil {
				t.Fatal("forEach swallowed the worker panic")
			}
			var ok bool
			if msg, ok = r.(string); !ok {
				t.Fatalf("re-raised panic is %T, want string", r)
			}
		}()
		forEach(len(done), 3, func(i int) string {
			return "job-five"
		}, func(i int) {
			if i == 5 {
				panic("boom")
			}
			done[i] = true
		})
	}()
	if !strings.Contains(msg, `"job-five"`) {
		t.Errorf("panic message lacks job identity: %q", msg)
	}
	if !strings.Contains(msg, "boom") {
		t.Errorf("panic message lacks original value: %q", msg)
	}
	for i, d := range done {
		if i != 5 && !d {
			t.Errorf("job %d never ran after another job panicked", i)
		}
	}
}

// TestForEachSerial covers the parallel<=1 clamp.
func TestForEachSerial(t *testing.T) {
	var order []int
	forEach(4, 0, func(i int) string { return "serial" }, func(i int) {
		order = append(order, i)
	})
	for i, v := range order {
		if v != i {
			t.Fatalf("serial forEach ran out of order: %v", order)
		}
	}
	if len(order) != 4 {
		t.Fatalf("serial forEach ran %d of 4 jobs", len(order))
	}
}
