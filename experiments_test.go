package repro

import (
	"fmt"
	"strings"
	"sync"
	"testing"
)

// TestForEachPanicAttribution checks the worker-panic contract: a
// panic inside one job is re-raised in the caller, carrying the job's
// identity and original panic value, while the remaining jobs still
// run to completion.
func TestForEachPanicAttribution(t *testing.T) {
	done := make([]bool, 8)
	var msg string
	func() {
		defer func() {
			r := recover()
			if r == nil {
				t.Fatal("forEach swallowed the worker panic")
			}
			var ok bool
			if msg, ok = r.(string); !ok {
				t.Fatalf("re-raised panic is %T, want string", r)
			}
		}()
		forEach(len(done), 3, func(i int) string {
			return "job-five"
		}, func(i int) {
			if i == 5 {
				panic("boom")
			}
			done[i] = true
		})
	}()
	if !strings.Contains(msg, `"job-five"`) {
		t.Errorf("panic message lacks job identity: %q", msg)
	}
	if !strings.Contains(msg, "boom") {
		t.Errorf("panic message lacks original value: %q", msg)
	}
	for i, d := range done {
		if i != 5 && !d {
			t.Errorf("job %d never ran after another job panicked", i)
		}
	}
}

// TestForEachPanicGridOrder pins down which panic wins when several
// jobs blow up: the lowest job index — first in grid order — not
// whichever worker's recover ran first. Job 6 is choreographed to
// panic strictly before job 1 (it releases job 1 only after its own
// panic is inevitable), yet job 1 must be the one reported.
func TestForEachPanicGridOrder(t *testing.T) {
	released := make(chan struct{})
	var msg string
	func() {
		defer func() {
			r := recover()
			if r == nil {
				t.Fatal("forEach swallowed the worker panics")
			}
			msg = r.(string)
		}()
		forEach(8, 4, func(i int) string {
			return fmt.Sprintf("job-%d", i)
		}, func(i int) {
			switch i {
			case 1:
				<-released // job 6 panics first, every time
				panic("late-low")
			case 6:
				defer close(released)
				panic("early-high")
			}
		})
	}()
	if !strings.Contains(msg, `"job-1"`) || !strings.Contains(msg, "late-low") {
		t.Errorf("panic should report the lowest grid index (job 1), got: %q", msg)
	}
	if strings.Contains(msg, `"job-6"`) {
		t.Errorf("panic reports the first-to-arrive job instead of grid order: %q", msg)
	}
}

// TestForEachClamp covers both ends of the parallelism clamp: more
// workers than jobs, and a nonsensical negative value. Every job must
// run exactly once either way.
func TestForEachClamp(t *testing.T) {
	for _, parallel := range []int{100, -5} {
		var mu sync.Mutex
		ran := make([]int, 3)
		forEach(len(ran), parallel, func(i int) string { return "clamp" }, func(i int) {
			mu.Lock()
			ran[i]++
			mu.Unlock()
		})
		for i, c := range ran {
			if c != 1 {
				t.Errorf("parallel=%d: job %d ran %d times, want 1", parallel, i, c)
			}
		}
	}
}

// TestForEachSerial covers the parallel<=1 clamp.
func TestForEachSerial(t *testing.T) {
	var order []int
	forEach(4, 0, func(i int) string { return "serial" }, func(i int) {
		order = append(order, i)
	})
	for i, v := range order {
		if v != i {
			t.Fatalf("serial forEach ran out of order: %v", order)
		}
	}
	if len(order) != 4 {
		t.Fatalf("serial forEach ran %d of 4 jobs", len(order))
	}
}
