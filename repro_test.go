package repro

import (
	"testing"

	"repro/internal/sim"
)

// The facade tests assert the headline shapes of the paper's
// evaluation at quick scale. Each experiment runs once and is then
// examined from several angles, like the paper's figures.

func TestWorkloadsAndSystems(t *testing.T) {
	if len(Workloads()) != 18 {
		t.Fatalf("Workloads() = %d", len(Workloads()))
	}
	if len(Systems()) != 10 {
		t.Fatalf("Systems() = %d", len(Systems()))
	}
	if _, err := WorkloadByName("specjbb"); err != nil {
		t.Fatal(err)
	}
	if _, err := SystemByName("GEMINI"); err != nil {
		t.Fatal(err)
	}
}

func TestFigure2Shape(t *testing.T) {
	rows := Figure2(Options{Quick: true})
	byKey := map[string]MicroResult{}
	for _, r := range rows {
		byKey[r.Label+string(rune(r.DatasetMB))] = r
	}
	// At the largest quick dataset, aligned >> base and misaligned is
	// within ~1.6x of base (walk savings only).
	const big = 128
	find := func(label string) MicroResult {
		for _, r := range rows {
			if r.Label == label && r.DatasetMB == big {
				return r
			}
		}
		t.Fatalf("missing %s@%d", label, big)
		return MicroResult{}
	}
	base := find("Host-B-VM-B")
	aligned := find("Host-H-VM-H")
	misaligned := find("Host-H-VM-B")
	if aligned.Throughput < 3*base.Throughput {
		t.Errorf("aligned %.1f vs base %.1f: expected large gap", aligned.Throughput, base.Throughput)
	}
	if misaligned.Throughput > 1.8*base.Throughput {
		t.Errorf("misaligned %.1f suspiciously better than base %.1f",
			misaligned.Throughput, base.Throughput)
	}
}

func TestMotivationShape(t *testing.T) {
	rows := Motivation(Options{Quick: true, Workloads: []string{"canneal", "specjbb"}})
	// A cross-layer coordinated system (GEMINI or FHPM) has the best
	// aligned rate on every motivation workload; uncoordinated systems
	// only align by coincidence.
	best := map[string]string{}
	rate := map[string]float64{}
	var gemRates, thpRates []float64
	for _, r := range rows {
		if r.AlignedRate > rate[r.Workload] {
			rate[r.Workload] = r.AlignedRate
			best[r.Workload] = r.System
		}
		switch r.System {
		case "GEMINI":
			gemRates = append(gemRates, r.AlignedRate)
		case "THP":
			thpRates = append(thpRates, r.AlignedRate)
		}
	}
	for wl, sysName := range best {
		sys, err := SystemByName(sysName)
		if err != nil {
			t.Fatalf("%s: best system %q unknown: %v", wl, sysName, err)
		}
		if !sim.Def(sys).Coordinated {
			t.Errorf("%s: best aligned rate belongs to uncoordinated %s", wl, sysName)
		}
	}
	for i := range gemRates {
		if gemRates[i] <= thpRates[i] {
			t.Errorf("Gemini rate %.2f <= THP %.2f", gemRates[i], thpRates[i])
		}
	}
}

func TestNormalizeThroughput(t *testing.T) {
	rows := []Result{
		{System: "Host-B-VM-B", Workload: "w", Throughput: 10},
		{System: "GEMINI", Workload: "w", Throughput: 17},
	}
	n, err := NormalizeThroughput(rows, "Host-B-VM-B")
	if err != nil {
		t.Fatalf("NormalizeThroughput: %v", err)
	}
	if n["w"]["GEMINI"] != 1.7 {
		t.Fatalf("normalized = %v", n)
	}
	if n["w"]["Host-B-VM-B"] != 1.0 {
		t.Fatalf("baseline normalized = %v", n)
	}
}

func TestNormalizeThroughputMissingBaseline(t *testing.T) {
	rows := []Result{
		{System: "GEMINI", Workload: "w", Throughput: 17},
		{System: "THP", Workload: "w", Throughput: 12},
	}
	if _, err := NormalizeThroughput(rows, "Host-B-VM-B"); err == nil {
		t.Fatal("want error when the baseline system is absent, got nil")
	}
}

func TestNormalizeThroughputZeroBaseline(t *testing.T) {
	rows := []Result{
		{System: "Host-B-VM-B", Workload: "w", Throughput: 10},
		{System: "Host-B-VM-B", Workload: "x", Throughput: 0},
		{System: "GEMINI", Workload: "w", Throughput: 17},
		{System: "GEMINI", Workload: "x", Throughput: 9},
	}
	_, err := NormalizeThroughput(rows, "Host-B-VM-B")
	if err == nil {
		t.Fatal("want error when a baseline throughput is zero, got nil")
	}
	if !containsStr(err.Error(), "x") {
		t.Errorf("error should name the workload missing a baseline: %v", err)
	}
}

func TestFormatTable(t *testing.T) {
	rows := []Result{
		{System: "A", Workload: "w1", Throughput: 1},
		{System: "B", Workload: "w1", Throughput: 2},
		{System: "A", Workload: "w2", Throughput: 3},
		{System: "B", Workload: "w2", Throughput: 4},
	}
	s := FormatTable("t", rows, func(r Result) float64 { return r.Throughput }, "%.0f")
	if s == "" {
		t.Fatal("empty table")
	}
	for _, want := range []string{"w1", "w2", "A", "B"} {
		if !containsStr(s, want) {
			t.Errorf("table missing %q:\n%s", want, s)
		}
	}
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestGeometricMean(t *testing.T) {
	if g := GeometricMean([]float64{2, 8}); g < 3.99 || g > 4.01 {
		t.Fatalf("GeometricMean(2,8) = %v", g)
	}
	if GeometricMean(nil) != 0 {
		t.Fatal("empty geomean != 0")
	}
	if GeometricMean([]float64{1, -1}) != 0 {
		t.Fatal("negative geomean != 0")
	}
}

func TestBreakdownHasAllVariants(t *testing.T) {
	rows := Breakdown(Options{Quick: true, Workloads: []string{"memcached"}})
	seen := map[string]bool{}
	for _, r := range rows {
		seen[r.System] = true
	}
	for _, want := range []string{"GEMINI", "GEMINI-EMA/HB", "GEMINI-bucket"} {
		if !seen[want] {
			t.Errorf("missing variant %s (have %v)", want, seen)
		}
	}
}

func TestColocatedOverheadBound(t *testing.T) {
	// §6.5: on the non-TLB-sensitive tenant Gemini costs at most a few
	// percent.
	pairs := Colocated(Options{Quick: true})
	rows, ok := pairs["masstree+sp.d"]
	if !ok {
		t.Fatalf("missing pair: %v", func() []string {
			var ks []string
			for k := range pairs {
				ks = append(ks, k)
			}
			return ks
		}())
	}
	var base, gem float64
	for _, cr := range rows {
		switch cr.B.System {
		case "Host-B-VM-B":
			base = cr.B.Throughput
		case "GEMINI":
			gem = cr.B.Throughput
		}
	}
	if base == 0 || gem == 0 {
		t.Fatal("missing systems in pair results")
	}
	ratio := gem / base
	if ratio < 0.9 || ratio > 1.2 {
		t.Errorf("sp.d under Gemini vs base = %.3f, want ~1", ratio)
	}
}
