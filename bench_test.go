package repro

import (
	"sync"
	"testing"
)

// The benchmarks below regenerate each figure and table of the paper's
// evaluation at reduced scale (Options.Quick): same systems, same
// settings, half-size footprints and fewer requests, so a full
// `go test -bench=.` pass stays in the minutes range. Run
// `cmd/paperbench` for the full-scale tables.
//
// Benchmarks report ns/op for one full experiment regeneration; the
// interesting output is the text tables from cmd/paperbench and the
// derived metrics asserted in repro_test.go.

func quickOpts() Options {
	return Options{Seed: 1, Quick: true, Parallel: 4}
}

// BenchmarkFigure2 regenerates the micro-benchmark sweep (Figure 2).
func BenchmarkFigure2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := Figure2(quickOpts())
		if len(rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

// BenchmarkFigure3Table1 regenerates the motivation experiment
// (Figure 3 throughput/latency and Table 1 alignment rates).
func BenchmarkFigure3Table1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := Motivation(quickOpts())
		if len(rows) != 4*8 {
			b.Fatalf("rows = %d", len(rows))
		}
	}
}

// The Figure 8-11/Table 3 benchmarks are views of one clean-slate
// sweep and the Figure 12-15/Table 4 benchmarks views of one reused-VM
// sweep, exactly as in the paper; the sweeps run once per `go test`
// invocation (the first benchmark of each family pays the cost).
var (
	cleanOnce  sync.Once
	cleanRows  []CleanSlateRow
	reusedOnce sync.Once
	reusedRows []Result
)

func cleanSlateRows(b *testing.B) []CleanSlateRow {
	cleanOnce.Do(func() { cleanRows = CleanSlate(quickOpts()) })
	if len(cleanRows) == 0 {
		b.Fatal("no rows")
	}
	return cleanRows
}

func reusedVMRows(b *testing.B) []Result {
	reusedOnce.Do(func() { reusedRows = ReusedVM(quickOpts()) })
	if len(reusedRows) == 0 {
		b.Fatal("no rows")
	}
	return reusedRows
}

func benchCleanSlate(b *testing.B, filter func(CleanSlateRow) float64) {
	for i := 0; i < b.N; i++ {
		var sum float64
		for _, r := range cleanSlateRows(b) {
			sum += filter(r)
		}
		if sum <= 0 {
			b.Fatal("degenerate metrics")
		}
	}
}

// BenchmarkFigure8Throughput regenerates clean-slate throughput.
func BenchmarkFigure8Throughput(b *testing.B) {
	benchCleanSlate(b, func(r CleanSlateRow) float64 { return r.Throughput })
}

// BenchmarkFigure9MeanLatency regenerates clean-slate mean latency.
func BenchmarkFigure9MeanLatency(b *testing.B) {
	benchCleanSlate(b, func(r CleanSlateRow) float64 { return r.MeanLatency })
}

// BenchmarkFigure10TailLatency regenerates clean-slate p99 latency.
func BenchmarkFigure10TailLatency(b *testing.B) {
	benchCleanSlate(b, func(r CleanSlateRow) float64 { return r.P99Latency })
}

// BenchmarkFigure11TLBMisses regenerates clean-slate TLB misses.
func BenchmarkFigure11TLBMisses(b *testing.B) {
	benchCleanSlate(b, func(r CleanSlateRow) float64 { return r.TLBMissesPerKAccess })
}

// BenchmarkTable3AlignedRates regenerates the clean-slate alignment
// table.
func BenchmarkTable3AlignedRates(b *testing.B) {
	benchCleanSlate(b, func(r CleanSlateRow) float64 {
		if r.Fragmented {
			return r.AlignedRate + 0.001 // rates can legitimately be 0 for baselines
		}
		return 0.001
	})
}

// benchReused shares one reused-VM sweep across Figure 12-15/Table 4.
func benchReused(b *testing.B, metric func(Result) float64) {
	for i := 0; i < b.N; i++ {
		var sum float64
		for _, r := range reusedVMRows(b) {
			sum += metric(r)
		}
		if sum <= 0 {
			b.Fatal("degenerate metrics")
		}
	}
}

// BenchmarkFigure12ReusedThroughput regenerates reused-VM throughput.
func BenchmarkFigure12ReusedThroughput(b *testing.B) {
	benchReused(b, func(r Result) float64 { return r.Throughput })
}

// BenchmarkFigure13ReusedMeanLatency regenerates reused-VM mean latency.
func BenchmarkFigure13ReusedMeanLatency(b *testing.B) {
	benchReused(b, func(r Result) float64 { return r.MeanLatency })
}

// BenchmarkFigure14ReusedTailLatency regenerates reused-VM p99 latency.
func BenchmarkFigure14ReusedTailLatency(b *testing.B) {
	benchReused(b, func(r Result) float64 { return r.P99Latency })
}

// BenchmarkFigure15ReusedTLBMisses regenerates reused-VM TLB misses.
func BenchmarkFigure15ReusedTLBMisses(b *testing.B) {
	benchReused(b, func(r Result) float64 { return r.TLBMissesPerKAccess })
}

// BenchmarkTable4ReusedAlignedRates regenerates the reused-VM
// alignment table.
func BenchmarkTable4ReusedAlignedRates(b *testing.B) {
	benchReused(b, func(r Result) float64 { return r.AlignedRate + 0.001 })
}

// BenchmarkFigure16Breakdown regenerates the EMA/HB vs huge-bucket
// breakdown.
func BenchmarkFigure16Breakdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := Breakdown(quickOpts())
		if len(rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

// BenchmarkFigure17Colocated regenerates collocated-VM throughput.
func BenchmarkFigure17Colocated(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pairs := Colocated(quickOpts())
		if len(pairs) == 0 {
			b.Fatal("no pairs")
		}
	}
}

// BenchmarkFigure18ColocatedLatency regenerates collocated-VM latency
// (same runs as Figure 17, reported as latency).
func BenchmarkFigure18ColocatedLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pairs := Colocated(quickOpts())
		for _, rows := range pairs {
			for _, cr := range rows {
				_ = cr.A.MeanLatency
			}
		}
	}
}

// --- Ablation benchmarks beyond the paper (DESIGN.md §3) ---

// benchAblation runs Gemini against one ablated variant on a fixed
// workload and reports the throughput delta via b.ReportMetric.
func benchAblation(b *testing.B, variant System) {
	spec, err := WorkloadByName("memcached")
	if err != nil {
		b.Fatal(err)
	}
	spec.FootprintMB /= 2
	for i := 0; i < b.N; i++ {
		full := Run(Config{System: Gemini, Workload: spec, Fragmented: true,
			ReusedVM: true, Requests: 1500, Seed: 1})
		abl := Run(Config{System: variant, Workload: spec, Fragmented: true,
			ReusedVM: true, Requests: 1500, Seed: 1})
		if abl.Throughput > 0 {
			b.ReportMetric(full.Throughput/abl.Throughput, "full/ablated")
		}
	}
}

// BenchmarkAblationNoBucket measures the huge bucket's contribution.
func BenchmarkAblationNoBucket(b *testing.B) { benchAblation(b, GeminiNoBucket) }

// BenchmarkAblationBucketOnly measures EMA/HB's contribution.
func BenchmarkAblationBucketOnly(b *testing.B) { benchAblation(b, GeminiBucketOnly) }

// BenchmarkAblationStaticTimeout measures Algorithm 1's contribution.
func BenchmarkAblationStaticTimeout(b *testing.B) { benchAblation(b, GeminiStaticTimeout) }

// BenchmarkAblationNoPrealloc measures huge preallocation's
// contribution.
func BenchmarkAblationNoPrealloc(b *testing.B) { benchAblation(b, GeminiNoPrealloc) }
